package experiment

import (
	"fmt"
	"strconv"
	"strings"
)

// ReportSection renders one experiment's CSV as a markdown section: title,
// an ASCII chart of the first metric, and a per-metric table with one row
// per sweep point and one column per algorithm. It is the building block of
// cmd/wdcreport and works from CSV alone, so reports can be regenerated
// without re-running anything.
func ReportSection(id, csv string, width, height int) (string, error) {
	exp := ByID(id)
	title := id
	xlabel := "x"
	if exp != nil {
		title = fmt.Sprintf("%s — %s", exp.ID, exp.Title)
		xlabel = exp.XLabel
	}

	metrics, err := csvMetricNames(csv)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", title)

	// Chart of the headline (first) metric.
	if _, series, err := ParseCSV(csv, metrics[0]); err == nil {
		b.WriteString("```\n")
		b.WriteString(Chart(title, xlabel, metrics[0], series, width, height))
		b.WriteString("```\n\n")
	}

	// Tables per metric, reconstructed from the long-form CSV.
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	header := strings.Split(lines[0], ",")
	type rowKey struct{ x, label string }
	var pointOrder []rowKey
	seenPoint := map[rowKey]bool{}
	var algoOrder []string
	seenAlgo := map[string]bool{}
	value := map[string]map[rowKey]map[string]string{} // metric → point → algo → "mean±ci"
	for _, m := range metrics {
		value[m] = map[rowKey]map[string]string{}
	}
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return "", fmt.Errorf("experiment: malformed CSV row %q", line)
		}
		key := rowKey{fields[1], fields[2]}
		algo := fields[3]
		if !seenPoint[key] {
			seenPoint[key] = true
			pointOrder = append(pointOrder, key)
		}
		if !seenAlgo[algo] {
			seenAlgo[algo] = true
			algoOrder = append(algoOrder, algo)
		}
		for i, m := range metrics {
			mean := fields[4+2*i]
			ci := fields[5+2*i]
			if value[m][key] == nil {
				value[m][key] = map[string]string{}
			}
			value[m][key][algo] = formatMeanCI(mean, ci)
		}
	}

	for _, m := range metrics {
		fmt.Fprintf(&b, "**%s**\n\n", m)
		fmt.Fprintf(&b, "| %s | %s |\n", xlabel, strings.Join(algoOrder, " | "))
		fmt.Fprintf(&b, "|%s|\n", strings.Repeat("---|", len(algoOrder)+1))
		for _, key := range pointOrder {
			cells := make([]string, len(algoOrder))
			for i, a := range algoOrder {
				cells[i] = value[m][key][a]
			}
			fmt.Fprintf(&b, "| %s | %s |\n", key.label, strings.Join(cells, " | "))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// csvMetricNames extracts the metric column names from a wdcsweep CSV
// header.
func csvMetricNames(csv string) ([]string, error) {
	nl := strings.IndexByte(csv, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("experiment: empty CSV")
	}
	header := strings.Split(csv[:nl], ",")
	if len(header) < 6 || header[0] != "experiment" {
		return nil, fmt.Errorf("experiment: unrecognized CSV header %q", csv[:nl])
	}
	var out []string
	for _, h := range header[4:] {
		if name, ok := strings.CutSuffix(h, "_mean"); ok {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: no metric columns in %q", csv[:nl])
	}
	return out, nil
}

// formatMeanCI compacts a mean/ci pair for a markdown cell.
func formatMeanCI(mean, ci string) string {
	m, err1 := strconv.ParseFloat(mean, 64)
	c, err2 := strconv.ParseFloat(ci, 64)
	if err1 != nil || err2 != nil {
		return mean
	}
	return fmt.Sprintf("%s±%s", fmtG(m), fmtG(c))
}
