package experiment

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/topology"
)

// tinyBase shrinks the base config so harness tests run in milliseconds.
func tinyBase() core.Config {
	cfg := core.DefaultConfig()
	cfg.NumClients = 10
	cfg.DB.NumItems = 100
	cfg.CacheCapacity = 30
	cfg.Horizon = 300 * des.Second
	cfg.Warmup = 60 * des.Second
	return cfg
}

func TestRegistryWellFormed(t *testing.T) {
	reg := Registry()
	if len(reg) < 13 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.XLabel == "" {
			t.Errorf("experiment %q missing metadata", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if len(e.Points) == 0 || len(e.Metrics) == 0 {
			t.Errorf("%s: empty points or metrics", e.ID)
		}
		labels := map[string]bool{}
		for _, p := range e.Points {
			if p.Mutate == nil {
				t.Errorf("%s: nil mutate", e.ID)
			}
			if labels[p.Label] {
				t.Errorf("%s: duplicate point label %q", e.ID, p.Label)
			}
			labels[p.Label] = true
		}
	}
	for _, id := range []string{"F1", "F10", "T1", "T3", "A1", "A2"} {
		if ByID(id) == nil {
			t.Errorf("ByID(%s) nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("ByID accepted unknown id")
	}
	if len(IDs()) != len(reg) {
		t.Error("IDs length mismatch")
	}
}

func TestRegistryPointsProduceValidConfigs(t *testing.T) {
	// Every point of every experiment must mutate the base into a config
	// that passes validation for every algorithm it runs.
	for _, e := range Registry() {
		algos := e.Algorithms
		if len(algos) == 0 {
			algos = allAlgos
		}
		for _, p := range e.Points {
			for _, a := range algos {
				cfg := DefaultBase()
				p.Mutate(&cfg)
				cfg.Algorithm = a
				if err := cfg.Validate(); err != nil {
					t.Errorf("%s x=%s algo=%s: %v", e.ID, p.Label, a, err)
				}
			}
		}
	}
}

func TestRunSmallExperiment(t *testing.T) {
	exp := &Experiment{
		ID: "X1", Title: "test sweep", XLabel: "load",
		Algorithms: []string{"ts", "tair"},
		Points: points([]float64{0, 0.4}, gLabel,
			func(c *core.Config, x float64) { c.TrafficLoad = x }),
		Metrics: []Metric{MetricDelay, MetricHit},
	}
	var progressCalls int
	var last Progress
	res, err := exp.Run(Options{
		Base: tinyBase(), Reps: 2, Workers: 4,
		Progress: func(p Progress) {
			progressCalls++
			if p.DoneUnits < 1 || p.DoneUnits > p.TotalUnits || p.TotalUnits != 8 {
				t.Errorf("progress units %d/%d", p.DoneUnits, p.TotalUnits)
			}
			if p.DoneCells > p.TotalCells || p.TotalCells != 4 {
				t.Errorf("progress cells %d/%d", p.DoneCells, p.TotalCells)
			}
			if p.Cell == "" {
				t.Error("progress without cell label")
			}
			last = p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells %d", len(res.Cells))
	}
	if progressCalls != 8 { // one per (cell, replication) unit
		t.Fatalf("progress calls %d", progressCalls)
	}
	if last.DoneUnits != 8 || last.DoneCells != 4 {
		t.Fatalf("final progress %+v", last)
	}
	for _, c := range res.Cells {
		if c.Agg == nil || c.Agg.Reps != 2 {
			t.Fatalf("cell %s/%s not aggregated", c.Algo, c.Point.Label)
		}
	}

	table := res.Table()
	for _, want := range []string{"X1", "delay", "hit", "ts", "tair", "0.4"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := res.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 { // header + 4 cells
		t.Fatalf("csv lines %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "experiment,x,label,algorithm,delay_mean,delay_ci95,hit_mean,hit_ci95") {
		t.Fatalf("csv header %q", lines[0])
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	exp := &Experiment{
		ID: "X2", Title: "det", XLabel: "u",
		Algorithms: []string{"ts"},
		Points: points([]float64{0.1, 1}, gLabel,
			func(c *core.Config, x float64) { c.DB.UpdateRate = x }),
		Metrics: []Metric{MetricDelay},
	}
	run := func(workers int) string {
		res, err := exp.Run(Options{Base: tinyBase(), Reps: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res.CSV() + "\n" + res.Table()
	}
	serial := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if run(w) != serial {
			t.Fatalf("workers=%d changed results", w)
		}
	}
}

func TestRunAllSchedulesAcrossExperiments(t *testing.T) {
	mk := func(id string) *Experiment {
		return &Experiment{
			ID: id, Title: "t", XLabel: "u",
			Algorithms: []string{"ts"},
			Points: points([]float64{0.1}, gLabel,
				func(c *core.Config, x float64) { c.DB.UpdateRate = x }),
			Metrics: []Metric{MetricDelay},
		}
	}
	var last Progress
	rs, err := RunAll(context.Background(), []*Experiment{mk("Y1"), mk("Y2")}, Options{
		Base: tinyBase(), Reps: 2, Workers: 4,
		Progress: func(p Progress) { last = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Exp.ID != "Y1" || rs[1].Exp.ID != "Y2" {
		t.Fatalf("results %v", rs)
	}
	// The pool is global: both experiments' replications share one schedule.
	if last.TotalUnits != 4 || last.TotalCells != 2 {
		t.Fatalf("progress %+v", last)
	}
	for _, r := range rs {
		if r.Cells[0].Agg == nil || r.Cells[0].Agg.Reps != 2 {
			t.Fatalf("%s not aggregated", r.Exp.ID)
		}
	}
}

func TestRunFailFast(t *testing.T) {
	exp := &Experiment{
		ID: "XF", Title: "fail", XLabel: "n",
		Algorithms: []string{"ts"},
		Points: []Point{
			{X: 1, Label: "ok", Mutate: func(c *core.Config) {}},
			{X: 2, Label: "bad", Mutate: func(c *core.Config) { c.NumClients = -1 }},
		},
		Metrics: []Metric{MetricDelay},
	}
	_, err := exp.Run(Options{Base: tinyBase(), Reps: 2, Workers: 2})
	if err == nil {
		t.Fatal("invalid cell did not fail the run")
	}
	if !strings.Contains(err.Error(), "x=bad") {
		t.Fatalf("error does not name the failing cell: %v", err)
	}
}

func TestRunCtxCancelled(t *testing.T) {
	exp := &Experiment{
		ID: "XC", Title: "cancel", XLabel: "n",
		Algorithms: []string{"ts"},
		Points:     []Point{{X: 1, Label: "p", Mutate: func(c *core.Config) {}}},
		Metrics:    []Metric{MetricDelay},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := exp.RunCtx(ctx, Options{Base: tinyBase(), Reps: 2, Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v", err)
	}
	// A partially filled result must still render (missing cells as "-").
	rs, err := RunAll(ctx, []*Experiment{exp}, Options{Base: tinyBase(), Reps: 2, Workers: 2})
	if !errors.Is(err, context.Canceled) || len(rs) != 1 {
		t.Fatalf("RunAll err=%v results=%d", err, len(rs))
	}
	if table := rs[0].Table(); !strings.Contains(table, "-") {
		t.Fatalf("partial table missing placeholder:\n%s", table)
	}
	if csv := rs[0].CSV(); !strings.Contains(csv, ",-,-") {
		t.Fatalf("partial CSV missing placeholder:\n%s", csv)
	}
}

func TestScaleShrinksHorizon(t *testing.T) {
	exp := &Experiment{
		ID: "X3", Title: "scaled", XLabel: "n",
		Algorithms: []string{"ts"},
		Scale:      0.5,
		Points:     []Point{{X: 1, Label: "p", Mutate: func(c *core.Config) {}}},
		Metrics:    []Metric{MetricDelay},
	}
	base := tinyBase()
	res, err := exp.Run(Options{Base: base, Reps: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantSec := (des.Duration(float64(base.Horizon)*0.5) - base.Warmup).Seconds()
	got := res.Cells[0].Agg.Runs[0].MeasuredSec
	if got != wantSec {
		t.Fatalf("measured %v, want %v", got, wantSec)
	}
}

func TestDefaultAlgorithmsAll(t *testing.T) {
	exp := &Experiment{
		ID: "X4", Title: "all", XLabel: "n",
		Points:  []Point{{X: 1, Label: "p", Mutate: func(c *core.Config) {}}},
		Metrics: []Metric{MetricDelay},
	}
	res, err := exp.Run(Options{Base: tinyBase(), Reps: 1, Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(allAlgos) {
		t.Fatalf("cells %d, want %d", len(res.Cells), len(allAlgos))
	}
	if got := res.algos(); len(got) != len(allAlgos) {
		t.Fatalf("algos %v", got)
	}
}

// TestRunCellWorkersInvariance: splitting the worker budget into per-
// replication lane workers must not change any aggregated output — the
// epoch runner is worker-count invariant, and the harness only re-shapes
// where the concurrency lives.
func TestRunCellWorkersInvariance(t *testing.T) {
	base := tinyBase()
	base.Topology = topology.DefaultConfig()
	base.Topology.NumCells = 4
	exp := &Experiment{
		ID: "X3", Title: "cellworkers", XLabel: "u",
		Algorithms: []string{"ts"},
		Points: points([]float64{0.1}, gLabel,
			func(c *core.Config, x float64) { c.DB.UpdateRate = x }),
		Metrics: []Metric{MetricDelay, MetricHit},
	}
	run := func(cw int) string {
		res, err := exp.Run(Options{Base: base, Reps: 2, Workers: 4, CellWorkers: cw})
		if err != nil {
			t.Fatal(err)
		}
		return res.CSV() + "\n" + res.Table()
	}
	want := run(2)
	for _, cw := range []int{3, 4} {
		if got := run(cw); got != want {
			t.Fatalf("CellWorkers=%d changed results\nwant:\n%s\ngot:\n%s", cw, want, got)
		}
	}
}
