package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
)

// tinyBase shrinks the base config so harness tests run in milliseconds.
func tinyBase() core.Config {
	cfg := core.DefaultConfig()
	cfg.NumClients = 10
	cfg.DB.NumItems = 100
	cfg.CacheCapacity = 30
	cfg.Horizon = 300 * des.Second
	cfg.Warmup = 60 * des.Second
	return cfg
}

func TestRegistryWellFormed(t *testing.T) {
	reg := Registry()
	if len(reg) < 13 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.XLabel == "" {
			t.Errorf("experiment %q missing metadata", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if len(e.Points) == 0 || len(e.Metrics) == 0 {
			t.Errorf("%s: empty points or metrics", e.ID)
		}
		labels := map[string]bool{}
		for _, p := range e.Points {
			if p.Mutate == nil {
				t.Errorf("%s: nil mutate", e.ID)
			}
			if labels[p.Label] {
				t.Errorf("%s: duplicate point label %q", e.ID, p.Label)
			}
			labels[p.Label] = true
		}
	}
	for _, id := range []string{"F1", "F10", "T1", "T3", "A1", "A2"} {
		if ByID(id) == nil {
			t.Errorf("ByID(%s) nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("ByID accepted unknown id")
	}
	if len(IDs()) != len(reg) {
		t.Error("IDs length mismatch")
	}
}

func TestRegistryPointsProduceValidConfigs(t *testing.T) {
	// Every point of every experiment must mutate the base into a config
	// that passes validation for every algorithm it runs.
	for _, e := range Registry() {
		algos := e.Algorithms
		if len(algos) == 0 {
			algos = allAlgos
		}
		for _, p := range e.Points {
			for _, a := range algos {
				cfg := DefaultBase()
				p.Mutate(&cfg)
				cfg.Algorithm = a
				if err := cfg.Validate(); err != nil {
					t.Errorf("%s x=%s algo=%s: %v", e.ID, p.Label, a, err)
				}
			}
		}
	}
}

func TestRunSmallExperiment(t *testing.T) {
	exp := &Experiment{
		ID: "X1", Title: "test sweep", XLabel: "load",
		Algorithms: []string{"ts", "tair"},
		Points: points([]float64{0, 0.4}, gLabel,
			func(c *core.Config, x float64) { c.TrafficLoad = x }),
		Metrics: []Metric{MetricDelay, MetricHit},
	}
	var progressCalls int
	res, err := exp.Run(Options{
		Base: tinyBase(), Reps: 2, Workers: 4,
		Progress: func(done, total int, cell string) {
			progressCalls++
			if done < 1 || done > total || total != 4 {
				t.Errorf("progress %d/%d", done, total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells %d", len(res.Cells))
	}
	if progressCalls != 4 {
		t.Fatalf("progress calls %d", progressCalls)
	}
	for _, c := range res.Cells {
		if c.Agg == nil || c.Agg.Reps != 2 {
			t.Fatalf("cell %s/%s not aggregated", c.Algo, c.Point.Label)
		}
	}

	table := res.Table()
	for _, want := range []string{"X1", "delay", "hit", "ts", "tair", "0.4"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := res.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 { // header + 4 cells
		t.Fatalf("csv lines %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "experiment,x,label,algorithm,delay_mean,delay_ci95,hit_mean,hit_ci95") {
		t.Fatalf("csv header %q", lines[0])
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	exp := &Experiment{
		ID: "X2", Title: "det", XLabel: "u",
		Algorithms: []string{"ts"},
		Points: points([]float64{0.1, 1}, gLabel,
			func(c *core.Config, x float64) { c.DB.UpdateRate = x }),
		Metrics: []Metric{MetricDelay},
	}
	run := func(workers int) string {
		res, err := exp.Run(Options{Base: tinyBase(), Reps: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res.CSV()
	}
	if run(1) != run(4) {
		t.Fatal("worker count changed results")
	}
}

func TestScaleShrinksHorizon(t *testing.T) {
	exp := &Experiment{
		ID: "X3", Title: "scaled", XLabel: "n",
		Algorithms: []string{"ts"},
		Scale:      0.5,
		Points:     []Point{{X: 1, Label: "p", Mutate: func(c *core.Config) {}}},
		Metrics:    []Metric{MetricDelay},
	}
	base := tinyBase()
	res, err := exp.Run(Options{Base: base, Reps: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantSec := (des.Duration(float64(base.Horizon)*0.5) - base.Warmup).Seconds()
	got := res.Cells[0].Agg.Runs[0].MeasuredSec
	if got != wantSec {
		t.Fatalf("measured %v, want %v", got, wantSec)
	}
}

func TestDefaultAlgorithmsAll(t *testing.T) {
	exp := &Experiment{
		ID: "X4", Title: "all", XLabel: "n",
		Points:  []Point{{X: 1, Label: "p", Mutate: func(c *core.Config) {}}},
		Metrics: []Metric{MetricDelay},
	}
	res, err := exp.Run(Options{Base: tinyBase(), Reps: 1, Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(allAlgos) {
		t.Fatalf("cells %d, want %d", len(res.Cells), len(allAlgos))
	}
	if got := res.algos(); len(got) != len(allAlgos) {
		t.Fatalf("algos %v", got)
	}
}
