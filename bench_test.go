// Benchmark harness: one benchmark per figure/table of the evaluation (see
// DESIGN.md §4 and EXPERIMENTS.md). Each sub-benchmark runs shortened
// replications of one (algorithm, sweep-point) cell and reports the cell's
// headline metrics via b.ReportMetric, so
//
//	go test -bench F4 -benchmem
//
// regenerates the corresponding figure's series at reduced scale. Full-scale
// regeneration (longer horizons, more replications, confidence intervals) is
// cmd/wdcsweep's job; the benchmarks trade precision for a runtime that fits
// in a CI budget.
package repro

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/experiment"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// benchBase is the reduced-scale configuration the benchmarks run.
func benchBase() core.Config {
	cfg := core.DefaultConfig()
	cfg.NumClients = 50
	cfg.Horizon = 500 * des.Second
	cfg.Warmup = 100 * des.Second
	return cfg
}

// runCell executes b.N replications of one experiment cell and reports the
// across-replication mean of the headline metrics.
func runCell(b *testing.B, cfg core.Config) {
	b.Helper()
	var delay, hit, overhead, energy, util float64
	var stale uint64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		r, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		delay += r.MeanDelay
		hit += r.HitRatio
		overhead += r.OverheadBitsPerSec()
		energy += r.EnergyPerQuery
		util += r.DownlinkUtil
		stale += r.StaleViolations
	}
	n := float64(b.N)
	b.ReportMetric(delay/n, "s-delay")
	b.ReportMetric(hit/n, "hit-ratio")
	b.ReportMetric(overhead/n, "b/s-overhead")
	b.ReportMetric(energy/n, "J/query")
	b.ReportMetric(util/n, "util")
	if stale != 0 {
		b.Fatalf("consistency violated: %d stale answers", stale)
	}
}

// benchExperiment expands one registry entry into sub-benchmarks.
func benchExperiment(b *testing.B, id string) {
	exp := experiment.ByID(id)
	if exp == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	algos := exp.Algorithms
	if len(algos) == 0 {
		algos = []string{"ts", "at", "sig", "bs", "uir", "tair", "lair", "hybrid"}
	}
	for _, p := range exp.Points {
		for _, algo := range algos {
			p, algo := p, algo
			b.Run(fmt.Sprintf("%s=%s/%s", exp.XLabel, p.Label, algo), func(b *testing.B) {
				cfg := benchBase()
				p.Mutate(&cfg)
				cfg.Algorithm = algo
				runCell(b, cfg)
			})
		}
	}
}

// Figures.

func BenchmarkF1DelayVsUpdateRate(b *testing.B)      { benchExperiment(b, "F1") }
func BenchmarkF2HitRatioVsUpdateRate(b *testing.B)   { benchExperiment(b, "F2") }
func BenchmarkF3DelayVsQueryRate(b *testing.B)       { benchExperiment(b, "F3") }
func BenchmarkF4DelayVsDownlinkLoad(b *testing.B)    { benchExperiment(b, "F4") }
func BenchmarkF5OverheadVsDownlinkLoad(b *testing.B) { benchExperiment(b, "F5") }
func BenchmarkF6DelayVsSNR(b *testing.B)             { benchExperiment(b, "F6") }
func BenchmarkF7MissVsSNR(b *testing.B)              { benchExperiment(b, "F7") }
func BenchmarkF8DelayVsSleep(b *testing.B)           { benchExperiment(b, "F8") }
func BenchmarkF9ScalabilityClients(b *testing.B)     { benchExperiment(b, "F9") }
func BenchmarkF10SkewSweep(b *testing.B)             { benchExperiment(b, "F10") }

// Tables.

func BenchmarkT1DefaultMatrix(b *testing.B)      { benchExperiment(b, "T1") }
func BenchmarkT2DopplerMatrix(b *testing.B)      { benchExperiment(b, "T2") }
func BenchmarkT3IRIntervalTradeoff(b *testing.B) { benchExperiment(b, "T3") }
func BenchmarkT4WindowTradeoff(b *testing.B)     { benchExperiment(b, "T4") }

// Ablations.

func BenchmarkA1CoverageAblation(b *testing.B)   { benchExperiment(b, "A1") }
func BenchmarkA2SchedulingAblation(b *testing.B) { benchExperiment(b, "A2") }
func BenchmarkA3SnoopExtension(b *testing.B)     { benchExperiment(b, "A3") }
func BenchmarkA4MobilitySweep(b *testing.B)      { benchExperiment(b, "A4") }
func BenchmarkA5CachePolicy(b *testing.B)        { benchExperiment(b, "A5") }
func BenchmarkA6Coalescing(b *testing.B)         { benchExperiment(b, "A6") }

// BenchmarkEngine measures the raw simulator throughput (events/second of
// wall time) independent of any experiment, as a performance regression
// guard for the DES core.
func BenchmarkEngine(b *testing.B) {
	cfg := benchBase()
	cfg.Algorithm = "hybrid"
	var events uint64
	var simSec float64
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs := ms.Mallocs
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		sim, err := core.NewSimulation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := sim.Execute()
		events += sim.Executed()
		simSec += r.MeasuredSec
	}
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(simSec/b.Elapsed().Seconds(), "simsec/s")
	b.ReportMetric(float64(ms.Mallocs-mallocs)/float64(events), "allocs/event")
}

// benchSketchSamples generates a deterministic log-uniform delay stream in
// [100 µs, 100 s) — the range a query-delay sketch actually sees.
func benchSketchSamples(n int) []float64 {
	out := make([]float64, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		u := float64(state>>11) / float64(1<<53)
		out[i] = 1e-4 * math.Pow(1e6, u)
	}
	return out
}

// BenchmarkSketchObserve measures the per-sample cost of the quantile sketch
// on the delay-observation hot path. Each iteration observes a fixed batch so
// the "ns/observe" metric stays stable even at the ratchet's low -benchtime;
// wdcbench records it as sketch_observe_ns under the ±15% gate.
func BenchmarkSketchObserve(b *testing.B) {
	const batch = 1 << 14
	samples := benchSketchSamples(batch)
	s := metrics.NewDelaySketch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range samples {
			s.Observe(x)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/observe")
}

// BenchmarkSketchMerge measures the cost of folding one populated delay
// sketch into another — the per-replication aggregation step. Merge cost is
// O(buckets) regardless of counts, so merging into one accumulator repeatedly
// is representative; wdcbench records "ns/merge" as sketch_merge_ns.
func BenchmarkSketchMerge(b *testing.B) {
	const merges = 128
	src := metrics.NewDelaySketch()
	for _, x := range benchSketchSamples(1 << 14) {
		src.Observe(x)
	}
	dst := metrics.NewDelaySketch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < merges; j++ {
			dst.Merge(src)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*merges), "ns/merge")
}

// BenchmarkReportDecode measures the client-side hot path of the served
// planes: one broadcast report decoded into a reused Report via
// ir.UnmarshalInto. The reuse contract makes the steady state allocation-free
// (the items backing array and sig block are retained across decodes), so
// both the ns/decode cost and the allocs/op count ride the wdcbench ratchet
// as report_decode_ns / report_decode_allocs.
func BenchmarkReportDecode(b *testing.B) {
	items := make([]db.Update, 64)
	for i := range items {
		items[i] = db.Update{ID: i * 7 % 997, At: des.Time(1_000_000 + i*1_000)}
	}
	data := (&ir.Report{
		Kind: ir.KindFull, Seq: 42, At: 2_000_000, PrevAt: 1_000_000,
		WindowStart: 500_000, Items: items,
	}).Marshal()
	var dst ir.Report
	if err := ir.UnmarshalInto(&dst, data); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ir.UnmarshalInto(&dst, data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/decode")
}

// BenchmarkTracerOverhead measures the simulator at the tracer's three
// operating points: disabled (the nil-guard fast path every production run
// takes), a bounded in-memory ring, and a JSONL sink writing to a discarded
// stream. Comparing "off" against BenchmarkEngine is the CI guard that the
// disabled tracer adds no measurable overhead; "ring" and "jsonl" bound what
// enabling tracing costs.
func BenchmarkTracerOverhead(b *testing.B) {
	variants := []struct {
		name   string
		tracer func() obs.Tracer
	}{
		{"off", func() obs.Tracer { return nil }},
		{"ring", func() obs.Tracer { return obs.NewRing(1 << 12) }},
		{"jsonl", func() obs.Tracer { return obs.NewJSONL(io.Discard) }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchBase()
			cfg.Algorithm = "hybrid"
			var events uint64
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i) + 1
				cfg.Tracer = v.tracer()
				sim, err := core.NewSimulation(cfg)
				if err != nil {
					b.Fatal(err)
				}
				sim.Execute()
				events += sim.Executed()
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
