// Command wdcload is the wall-clock load harness CLI: it sweeps simulated
// client fleets across invalidation algorithms against a real wdcserved
// process (spawned binary or in-process server) over actual UDP and TCP
// sockets, records answer-latency quantiles and throughput per point to
// BENCH_3.json, and gates: zero stale answers always, plus optional absolute
// and ratcheted p99 latency SLOs.
//
// Usage:
//
//	wdcload -algos ts,hybrid -fleets 100,1000 -out BENCH_3.json
//	wdcload -bin ./wdcserved -algos all -fleets 1000 -gate-pct 15
//
// Each point runs the full client protocol: Zipf queries with exponential
// think times, doze periods followed by catch-up exchanges, piggybacked
// digests, broadcast report processing, and an online staleness sweep after
// every action. See internal/loadgen for the determinism contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/ir"
	"repro/internal/loadgen"
	"repro/internal/obs"
)

// LoadPoint is one measured algorithm × fleet-size configuration.
type LoadPoint struct {
	Algo             string  `json:"algo"`
	Clients          int     `json:"clients"`
	Queries          int64   `json:"queries"`
	QPS              float64 `json:"queries_per_sec"`
	P50Sec           float64 `json:"p50_sec"`
	P99Sec           float64 `json:"p99_sec"`
	P999Sec          float64 `json:"p999_sec"`
	Stale            int64   `json:"stale"`
	Drops            int64   `json:"drops"`
	Retries          int64   `json:"retries"`
	RecoveryCatchups int64   `json:"recovery_catchups"`
	QueueMax         int     `json:"actor_queue_max"`
	WallSec          float64 `json:"wall_sec"`
}

func (p LoadPoint) key() string { return fmt.Sprintf("%s@%d", p.Algo, p.Clients) }

// LoadRecord is one full sweep.
type LoadRecord struct {
	Points []LoadPoint `json:"points"`
}

func (r *LoadRecord) find(key string) *LoadPoint {
	if r == nil {
		return nil
	}
	for i := range r.Points {
		if r.Points[i].key() == key {
			return &r.Points[i]
		}
	}
	return nil
}

// LoadFile is the on-disk layout of BENCH_3.json.
type LoadFile struct {
	Schema   string             `json:"schema"`
	Command  string             `json:"command"`
	Baseline *LoadRecord        `json:"baseline"`
	Current  *LoadRecord        `json:"current"`
	DeltaPct map[string]float64 `json:"delta_pct,omitempty"`
	Note     string             `json:"note,omitempty"`
}

func main() {
	algosFlag := flag.String("algos", "all", "comma-separated algorithms, or 'all': "+strings.Join(ir.Names, ", "))
	fleetsFlag := flag.String("fleets", "100,1000", "comma-separated fleet sizes (clients per point)")
	bin := flag.String("bin", "", "wdcserved binary to spawn per point (empty: in-process server)")
	seed := flag.Uint64("seed", 1, "master seed for every harness stream")
	steps := flag.Int("steps", 20, "actions per client")
	rate := flag.Float64("rate", 20, "mean actions per second per client")
	doze := flag.Float64("doze", 0.4, "mean doze length (s)")
	injects := flag.Int("injects", 50, "database updates injected per point")
	signals := flag.Int("signals", 10, "environment-signal pushes per point")
	items := flag.Int("items", 128, "database items")
	out := flag.String("out", "", "write/ratchet BENCH_3.json at this path (empty: report only)")
	gatePct := flag.Float64("gate-pct", 0, "fail if p99 latency regresses more than this percent vs the committed record (0 disables)")
	gateSlack := flag.Float64("gate-slack", 0.002, "absolute seconds added to the ratchet ceiling; sub-millisecond p99s are scheduler noise, not regressions")
	sloP99 := flag.Float64("slo-p99", 0, "absolute p99 answer-latency ceiling in seconds (0 disables)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/load and /debug/pprof on this address during the sweep")
	flag.Parse()

	algos := ir.Names
	if *algosFlag != "all" {
		algos = strings.Split(*algosFlag, ",")
		for _, a := range algos {
			ok := false
			for _, n := range ir.Names {
				ok = ok || a == n
			}
			if !ok {
				fatal(fmt.Errorf("unknown algorithm %q", a))
			}
		}
	}
	var fleets []int
	for _, f := range strings.Split(*fleetsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad fleet size %q", f))
		}
		fleets = append(fleets, n)
	}

	mon := &obs.LoadMonitor{}
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/debug/load", mon)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "wdcload: debug server:", err)
			}
		}()
		fmt.Printf("wdcload: live snapshot at http://%s/debug/load\n", *debugAddr)
	}

	current := &LoadRecord{}
	for _, clients := range fleets {
		for _, algo := range algos {
			cfg := loadgen.DefaultConfig(algo, clients)
			cfg.Seed = *seed
			cfg.Steps = *steps
			cfg.Rate = *rate
			cfg.DozeMeanSec = *doze
			cfg.Injects = *injects
			cfg.Signals = *signals
			cfg.NumItems = *items
			cfg.Bin = *bin
			cfg.Monitor = mon
			res, err := loadgen.Run(cfg)
			if err != nil {
				fatal(fmt.Errorf("point %s@%d: %w", algo, clients, err))
			}
			p := LoadPoint{
				Algo:             res.Algo,
				Clients:          res.Clients,
				Queries:          res.Counts.Queries,
				QPS:              res.QPS(),
				P50Sec:           res.Latency.Quantile(0.50),
				P99Sec:           res.Latency.Quantile(0.99),
				P999Sec:          res.Latency.Quantile(0.999),
				Stale:            res.Stale,
				Drops:            res.Drops,
				Retries:          res.Retries,
				RecoveryCatchups: res.RecoveryCatchups,
				QueueMax:         res.QueueMax,
				WallSec:          res.Elapsed.Seconds(),
			}
			current.Points = append(current.Points, p)
			fmt.Printf("wdcload: %-12s %6d queries, %7.0f q/s, p50 %6.2fms p99 %6.2fms, %d retries, %d drops, queue max %d (%.1fs wall)\n",
				p.key(), p.Queries, p.QPS, p.P50Sec*1e3, p.P99Sec*1e3, p.Retries, p.Drops, p.QueueMax, p.WallSec)
		}
	}

	var failures []string
	for _, p := range current.Points {
		if p.Stale > 0 {
			failures = append(failures, fmt.Sprintf("point %s: %d stale answers", p.key(), p.Stale))
		}
		if *sloP99 > 0 && p.P99Sec > *sloP99 {
			failures = append(failures, fmt.Sprintf("point %s: p99 %.2fms exceeds SLO %.2fms",
				p.key(), p.P99Sec*1e3, *sloP99*1e3))
		}
	}

	if *out != "" {
		prior := readLoadFile(*out)
		rec := LoadFile{
			Schema:  "wdc-bench-load-v1",
			Command: "go run ./cmd/wdcload",
			Current: current,
		}
		if prior != nil && prior.Baseline != nil {
			rec.Baseline = prior.Baseline
			rec.Note = prior.Note
		} else {
			rec.Baseline = current
			rec.Note = fmt.Sprintf("recorded on a %d-CPU machine; wall-clock latency numbers are machine-relative", runtime.NumCPU())
		}
		rec.DeltaPct = map[string]float64{}
		for _, p := range current.Points {
			if b := rec.Baseline.find(p.key()); b != nil && b.P99Sec > 0 {
				rec.DeltaPct["p99_sec/"+p.key()] = pct(p.P99Sec, b.P99Sec)
				rec.DeltaPct["queries_per_sec/"+p.key()] = pct(p.QPS, b.QPS)
			}
		}
		// The record is written before any gate decision so a failing run
		// still leaves its evidence behind.
		if err := writeLoadFile(*out, &rec); err != nil {
			fatal(err)
		}
		fmt.Printf("wdcload: wrote %s (%d points)\n", *out, len(current.Points))

		if *gatePct > 0 && prior != nil {
			ref := prior.Current
			if ref == nil {
				ref = prior.Baseline
			}
			for _, p := range current.Points {
				committed := ref.find(p.key())
				if committed == nil || committed.P99Sec <= 0 {
					continue
				}
				ceiling := committed.P99Sec*(1+*gatePct/100) + *gateSlack
				if p.P99Sec > ceiling {
					failures = append(failures, fmt.Sprintf(
						"point %s: p99 regression: %.2fms > %.2fms (committed %.2fms)",
						p.key(), p.P99Sec*1e3, ceiling*1e3, committed.P99Sec*1e3))
				}
			}
		}
	}

	if len(failures) > 0 {
		fatal(fmt.Errorf("load gate failed:\n  %s", strings.Join(failures, "\n  ")))
	}
}

func pct(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

func readLoadFile(path string) *LoadFile {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var f LoadFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil
	}
	return &f
}

func writeLoadFile(path string, f *LoadFile) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdcload:", err)
	os.Exit(1)
}
