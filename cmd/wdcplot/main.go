// Command wdcplot renders a CSV file produced by wdcsweep as an ASCII line
// chart, one series per algorithm.
//
// Usage:
//
//	wdcsweep -exp F4 -out results
//	wdcplot -in results/F4.csv -metric delay
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	in := flag.String("in", "", "CSV file written by wdcsweep -out")
	metric := flag.String("metric", "delay", "metric column to plot (e.g. delay, hit, overhead)")
	width := flag.Int("width", 72, "plot area width")
	height := flag.Int("height", 20, "plot area height")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "wdcplot: -in required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	xlabel, series, err := experiment.ParseCSV(string(data), *metric)
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiment.Chart(*in, xlabel, *metric, series, *width, *height))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdcplot:", err)
	os.Exit(1)
}
