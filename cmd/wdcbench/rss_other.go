//go:build !linux

package main

// peakRSSBytes is unavailable off Linux; 0 disables the RSS gates for the
// affected points (readCityFile callers treat 0 as "not measured").
func peakRSSBytes() uint64 { return 0 }
