//go:build linux

package main

import "syscall"

// peakRSSBytes returns the process's resident-set high-water mark. Linux
// reports ru_maxrss in kilobytes.
func peakRSSBytes() uint64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return uint64(ru.Maxrss) * 1024
}
