// Command wdcbench turns `go test -bench` output into the machine-readable
// perf record BENCH_<n>.json and gates on throughput regressions.
//
// It reads the benchmark stream on stdin — typically
//
//	go test -run '^$' -bench 'Engine$|TracerOverhead|SketchObserve$|SketchMerge$|ReportDecode$' -benchmem . | wdcbench
//
// extracts the engine's events/s and allocs/event, the tracer-overhead
// variants, the quantile-sketch observe/merge costs, and the wire-report
// decode cost, and writes a JSON record with three blocks:
//
//	baseline   the pinned "before" reference; preserved from the existing
//	           record (or initialized to the current run if absent)
//	current    this run's numbers
//	delta_pct  current vs baseline, percent
//
// With -max-regress-pct set, wdcbench exits non-zero when the current
// events/s falls more than that percentage below the committed record's
// current block (falling back to baseline for a fresh record), or when a
// sketch cost climbs more than that percentage above it — the ratchet CI
// uses to catch hot-path regressions. The record is written before the
// gate decision so a failing run still leaves its evidence behind.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one measurement of the benchmark suite.
type Record struct {
	EngineEventsPerSec   float64            `json:"engine_events_per_sec"`
	EngineSimSecPerSec   float64            `json:"engine_simsec_per_sec,omitempty"`
	EngineAllocsPerEvent float64            `json:"engine_allocs_per_event"`
	TracerEventsPerSec   map[string]float64 `json:"tracer_events_per_sec,omitempty"`
	SketchObserveNs      float64            `json:"sketch_observe_ns,omitempty"`
	SketchMergeNs        float64            `json:"sketch_merge_ns,omitempty"`
	ReportDecodeNs       float64            `json:"report_decode_ns,omitempty"`
	ReportDecodeAllocs   float64            `json:"report_decode_allocs"`
}

// File is the on-disk layout of BENCH_<n>.json.
type File struct {
	Schema   string             `json:"schema"`
	Command  string             `json:"command"`
	Baseline *Record            `json:"baseline"`
	Current  *Record            `json:"current"`
	DeltaPct map[string]float64 `json:"delta_pct,omitempty"`
	Note     string             `json:"note,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_1.json", "record file to write")
	baseline := flag.String("baseline", "BENCH_1.json", "existing record to preserve the baseline from and gate against")
	maxRegress := flag.Float64("max-regress-pct", 0, "fail when events/s drops more than this percent below the committed record (0 disables)")
	city := flag.Bool("city", false, "run the city-scale clients×cells sweep instead of parsing stdin; writes/gates -out (default BENCH_2.json)")
	cityPoint := flag.String("city-point", "", "internal: run one city point CLIENTSxCELLS in-process and print its JSON")
	maxRSSMiB := flag.Float64("max-rss-mib", 1024, "city mode: absolute peak-RSS ceiling per point in MiB (0 disables)")
	flag.Parse()

	if *cityPoint != "" {
		runCityPoint(*cityPoint)
		return
	}
	if *city {
		path := *out
		if path == "BENCH_1.json" { // flag default is the stdin mode's record
			path = "BENCH_2.json"
		}
		base := *baseline
		if base == "BENCH_1.json" {
			base = path
		}
		runCity(path, base, *maxRegress, uint64(*maxRSSMiB*(1<<20)))
		return
	}

	metrics, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	engine, ok := metrics["BenchmarkEngine"]
	if !ok {
		fatal(fmt.Errorf("no BenchmarkEngine line on stdin (pass -bench 'Engine$|TracerOverhead')"))
	}
	current := &Record{
		EngineEventsPerSec:   engine["events/s"],
		EngineSimSecPerSec:   engine["simsec/s"],
		EngineAllocsPerEvent: engine["allocs/event"],
	}
	for _, variant := range []string{"off", "ring", "jsonl"} {
		if m, ok := metrics["BenchmarkTracerOverhead/"+variant]; ok {
			if current.TracerEventsPerSec == nil {
				current.TracerEventsPerSec = map[string]float64{}
			}
			current.TracerEventsPerSec[variant] = m["events/s"]
		}
	}
	if m, ok := metrics["BenchmarkSketchObserve"]; ok {
		current.SketchObserveNs = m["ns/observe"]
	}
	if m, ok := metrics["BenchmarkSketchMerge"]; ok {
		current.SketchMergeNs = m["ns/merge"]
	}
	if m, ok := metrics["BenchmarkReportDecode"]; ok {
		current.ReportDecodeNs = m["ns/decode"]
		current.ReportDecodeAllocs = m["allocs/op"]
	}

	prior := readFile(*baseline)
	rec := File{
		Schema:  "wdc-bench-v1",
		Command: "go test -run '^$' -bench 'Engine$|TracerOverhead|SketchObserve$|SketchMerge$|ReportDecode$' -benchtime 5x -benchmem .",
		Current: current,
	}
	if prior != nil && prior.Baseline != nil {
		rec.Baseline = prior.Baseline
		rec.Note = prior.Note
	} else {
		rec.Baseline = current
	}
	rec.DeltaPct = map[string]float64{
		"events_per_sec":   pct(current.EngineEventsPerSec, rec.Baseline.EngineEventsPerSec),
		"allocs_per_event": pct(current.EngineAllocsPerEvent, rec.Baseline.EngineAllocsPerEvent),
	}
	if current.SketchObserveNs > 0 && rec.Baseline.SketchObserveNs > 0 {
		rec.DeltaPct["sketch_observe_ns"] = pct(current.SketchObserveNs, rec.Baseline.SketchObserveNs)
	}
	if current.SketchMergeNs > 0 && rec.Baseline.SketchMergeNs > 0 {
		rec.DeltaPct["sketch_merge_ns"] = pct(current.SketchMergeNs, rec.Baseline.SketchMergeNs)
	}
	if current.ReportDecodeNs > 0 && rec.Baseline.ReportDecodeNs > 0 {
		rec.DeltaPct["report_decode_ns"] = pct(current.ReportDecodeNs, rec.Baseline.ReportDecodeNs)
	}
	if err := writeFile(*out, &rec); err != nil {
		fatal(err)
	}
	fmt.Printf("wdcbench: %s: %.0f events/s (%+.1f%% vs baseline), %.3f allocs/event (%+.1f%%)\n",
		*out, current.EngineEventsPerSec, rec.DeltaPct["events_per_sec"],
		current.EngineAllocsPerEvent, rec.DeltaPct["allocs_per_event"])
	if current.SketchObserveNs > 0 {
		fmt.Printf("wdcbench: sketch observe %.1f ns, merge %.1f ns\n",
			current.SketchObserveNs, current.SketchMergeNs)
	}
	if current.ReportDecodeNs > 0 {
		fmt.Printf("wdcbench: report decode %.1f ns, %.2f allocs/op\n",
			current.ReportDecodeNs, current.ReportDecodeAllocs)
	}

	if *maxRegress > 0 && prior != nil {
		ref := prior.Current
		if ref == nil {
			ref = prior.Baseline
		}
		if ref != nil && ref.EngineEventsPerSec > 0 {
			floor := ref.EngineEventsPerSec * (1 - *maxRegress/100)
			if current.EngineEventsPerSec < floor {
				fatal(fmt.Errorf("events/s regression: %.0f < %.0f (%.0f%% of committed %.0f)",
					current.EngineEventsPerSec, floor, 100-*maxRegress, ref.EngineEventsPerSec))
			}
		}
		// Sketch costs are lower-is-better: a regression is ns/op climbing
		// above the committed record by more than the allowed percentage.
		// Skipped when the committed record predates the sketch metrics.
		for _, g := range []struct {
			name     string
			cur, ref float64
		}{
			{"sketch observe ns", current.SketchObserveNs, ref.SketchObserveNs},
			{"sketch merge ns", current.SketchMergeNs, ref.SketchMergeNs},
			{"report decode ns", current.ReportDecodeNs, ref.ReportDecodeNs},
		} {
			if g.ref <= 0 || g.cur <= 0 {
				continue
			}
			ceiling := g.ref * (1 + *maxRegress/100)
			if g.cur > ceiling {
				fatal(fmt.Errorf("%s regression: %.1f > %.1f (%.0f%% over committed %.1f)",
					g.name, g.cur, ceiling, *maxRegress, g.ref))
			}
		}
		// Decode allocations are gated strictly, not by percentage: the
		// UnmarshalInto reuse contract pins the steady state at zero, and
		// any climb above the committed count is a broken contract.
		if ref != nil && ref.ReportDecodeNs > 0 && current.ReportDecodeAllocs > ref.ReportDecodeAllocs {
			fatal(fmt.Errorf("report decode allocs regression: %.2f/op > committed %.2f/op",
				current.ReportDecodeAllocs, ref.ReportDecodeAllocs))
		}
	}
}

// parseBench extracts metric pairs from `go test -bench` lines. Each line is
// "BenchmarkName-P  N  value unit  value unit ..."; the -P GOMAXPROCS suffix
// is stripped so records compare across machines.
func parseBench(r *os.File) (map[string]map[string]float64, error) {
	metrics := map[string]map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the stream through for the log
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := metrics[name]
		if m == nil {
			m = map[string]float64{}
			metrics[name] = m
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m[fields[i+1]] = v
		}
	}
	return metrics, sc.Err()
}

// pct reports the percent change from base to cur, or 0 when base is zero.
func pct(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

func readFile(path string) *File {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil
	}
	return &f
}

func writeFile(path string, f *File) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdcbench:", err)
	os.Exit(1)
}
