package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/des"
)

// City-scale benchmark: a clients×cells scaling curve over the simulation
// engine, recorded to BENCH_2.json and ratcheted in CI the same way
// BENCH_1.json ratchets single-replication throughput. Each point runs in its
// own subprocess (the parent re-execs itself with -city-point) so peak RSS —
// read from the OS's per-process high-water mark — measures exactly one
// replication's footprint, not the accumulated heap of the whole sweep.

// cityPoints is the scaling curve: population grows 1k→100k while the grid
// grows 1→64 cells. The 100k×16 point is the capacity headline the README
// quotes; the 64-cell point keeps the handoff/roster machinery honest at high
// cell counts without multiplying the 100k channel state 64-fold.
var cityPoints = [][2]int{
	{1_000, 1},
	{10_000, 4},
	{100_000, 16},
	{10_000, 64},
}

// cityParallelPoint is the (clients, cells) shape the parallel scaling curve
// runs at: the ≥16-cell capacity headline, where per-cell lanes have real
// work to split.
var cityParallelPoint = [2]int{100_000, 16}

// cityParallelWorkers is the lane worker counts the scaling curve samples:
// P=1 (the epoch runner's serial floor), 2, 4, and NumCPU, deduplicated and
// clamped to the machine.
func cityParallelWorkers() []int {
	set := map[int]bool{}
	var ws []int
	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		if w >= 1 && !set[w] {
			set[w] = true
			ws = append(ws, w)
		}
	}
	sort.Ints(ws)
	return ws
}

// CityPoint is one measured (clients, cells) configuration.
// ParallelWorkers > 0 marks an epoch-parallel run with that many lane
// workers; 0 is the classic serial engine.
type CityPoint struct {
	Clients         int     `json:"clients"`
	Cells           int     `json:"cells"`
	ParallelWorkers int     `json:"parallel_workers,omitempty"`
	Events          uint64  `json:"events"`
	WallSec         float64 `json:"wall_sec"`
	EventsPerSec    float64 `json:"events_per_sec"`
	PeakRSSBytes    uint64  `json:"peak_rss_bytes"`
}

func (p CityPoint) key() string {
	if p.ParallelWorkers > 0 {
		return fmt.Sprintf("%dx%d@p%d", p.Clients, p.Cells, p.ParallelWorkers)
	}
	return fmt.Sprintf("%dx%d", p.Clients, p.Cells)
}

// CityRecord is one full sweep of the curve.
type CityRecord struct {
	Points []CityPoint `json:"points"`
}

// find returns the point for key, or nil.
func (r *CityRecord) find(key string) *CityPoint {
	if r == nil {
		return nil
	}
	for i := range r.Points {
		if r.Points[i].key() == key {
			return &r.Points[i]
		}
	}
	return nil
}

// CityFile is the on-disk layout of BENCH_2.json.
type CityFile struct {
	Schema   string             `json:"schema"`
	Command  string             `json:"command"`
	Baseline *CityRecord        `json:"baseline"`
	Current  *CityRecord        `json:"current"`
	DeltaPct map[string]float64 `json:"delta_pct,omitempty"`
	Note     string             `json:"note,omitempty"`
}

// cityConfig is the shared per-point simulation shape. The horizon scales
// inversely with population so every point processes a comparable number of
// events (~50k client-minutes) — enough wall time that the events/s ratchet
// measures steady-state throughput, not scheduler startup noise. Peak RSS
// doesn't grow with simulated time, so the short horizons cost the memory
// gate nothing. Half the population dozes at any instant, exercising the
// roster bitset churn that city-scale duty cycles produce.
func cityConfig(clients, cells int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = 7
	cfg.NumClients = clients
	cfg.Workload.SleepRatio = 0.5
	horizonMin := 50_000 / clients
	if horizonMin < 2 {
		horizonMin = 2
	}
	if horizonMin > 30 {
		horizonMin = 30
	}
	cfg.Horizon = des.Duration(horizonMin) * des.Minute
	cfg.Warmup = cfg.Horizon / 4
	if cfg.Warmup > 5*des.Minute {
		cfg.Warmup = 5 * des.Minute
	}
	if cells > 1 {
		cfg.Topology.NumCells = cells
		cfg.Topology.CheckPeriod = 5 * des.Second
	}
	return cfg
}

// runCityPoint executes one point in-process and prints its JSON measurement
// on stdout; the parent collects it. Invoked via the -city-point re-exec.
func runCityPoint(spec string) {
	var clients, cells, workers int
	if _, err := fmt.Sscanf(spec, "%dx%d@p%d", &clients, &cells, &workers); err != nil {
		if _, err := fmt.Sscanf(spec, "%dx%d", &clients, &cells); err != nil {
			fatal(fmt.Errorf("bad -city-point %q (want CLIENTSxCELLS[@pWORKERS]): %v", spec, err))
		}
	}
	cfg := cityConfig(clients, cells)
	if workers > 0 {
		cfg.Parallel = true
		cfg.ParallelWorkers = workers
	}
	stats, err := core.Run(cfg)
	if err != nil {
		fatal(err)
	}
	p := CityPoint{
		Clients:         clients,
		Cells:           cells,
		ParallelWorkers: workers,
		Events:          stats.Events,
		WallSec:         stats.WallSec,
		EventsPerSec:    stats.EventsPerSec,
		PeakRSSBytes:    peakRSSBytes(),
	}
	if err := json.NewEncoder(os.Stdout).Encode(p); err != nil {
		fatal(err)
	}
}

// runCity sweeps the scaling curve, writes BENCH_2.json, and gates: relative
// ratchets on events/s (floor) and peak RSS (ceiling) against the committed
// record, plus an absolute RSS ceiling every point must clear regardless of
// history. The record is written before any gate decision so a failing run
// still leaves its evidence behind.
func runCity(outPath, baselinePath string, maxRegressPct float64, maxRSSBytes uint64) {
	self, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	specs := make([]string, 0, len(cityPoints)+4)
	for _, pt := range cityPoints {
		specs = append(specs, fmt.Sprintf("%dx%d", pt[0], pt[1]))
	}
	// The parallel scaling curve: the ≥16-cell capacity point at each lane
	// worker count, so the record carries events/s versus workers.
	for _, w := range cityParallelWorkers() {
		specs = append(specs, fmt.Sprintf("%dx%d@p%d", cityParallelPoint[0], cityParallelPoint[1], w))
	}
	current := &CityRecord{}
	for _, spec := range specs {
		fmt.Printf("wdcbench: city point %s...\n", spec)
		// Best-of-2 on throughput: a single run's events/s carries scheduler
		// and cache-state noise the 15%% ratchet must not trip on. RSS takes
		// the max — the footprint bound should be the worst observed, and it
		// barely varies between runs anyway.
		var p CityPoint
		for rep := 0; rep < 2; rep++ {
			cmd := exec.Command(self, "-city-point", spec)
			cmd.Stderr = os.Stderr
			out, err := cmd.Output()
			if err != nil {
				fatal(fmt.Errorf("city point %s: %v", spec, err))
			}
			// The point's JSON is the last line (core.Run may log above it).
			lines := strings.Split(strings.TrimSpace(string(out)), "\n")
			var r CityPoint
			if err := json.Unmarshal([]byte(lines[len(lines)-1]), &r); err != nil {
				fatal(fmt.Errorf("city point %s: bad output %q: %v", spec, out, err))
			}
			if rep == 0 {
				p = r
				continue
			}
			if r.PeakRSSBytes > p.PeakRSSBytes {
				p.PeakRSSBytes = r.PeakRSSBytes
			}
			if r.EventsPerSec > p.EventsPerSec {
				p.Events, p.WallSec, p.EventsPerSec = r.Events, r.WallSec, r.EventsPerSec
			}
		}
		fmt.Printf("wdcbench: city point %s: %.0f events/s, peak RSS %.1f MiB (%.1fs wall)\n",
			spec, p.EventsPerSec, float64(p.PeakRSSBytes)/(1<<20), p.WallSec)
		current.Points = append(current.Points, p)
	}

	prior := readCityFile(baselinePath)
	rec := CityFile{
		Schema:  "wdc-bench-city-v1",
		Command: "go run ./cmd/wdcbench -city",
		Current: current,
	}
	if prior != nil && prior.Baseline != nil {
		rec.Baseline = prior.Baseline
		rec.Note = prior.Note
	} else {
		rec.Baseline = current
	}
	if ncpu := runtime.NumCPU(); ncpu < 4 {
		rec.Note = fmt.Sprintf("parallel speedup gate skipped: NumCPU=%d < 4 on the recording machine; "+
			"@pN points are recorded for determinism and scaling telemetry, not speedup evidence", ncpu)
	}
	rec.DeltaPct = map[string]float64{}
	for _, p := range current.Points {
		if b := rec.Baseline.find(p.key()); b != nil {
			rec.DeltaPct["events_per_sec/"+p.key()] = pct(p.EventsPerSec, b.EventsPerSec)
			rec.DeltaPct["peak_rss_bytes/"+p.key()] = pct(float64(p.PeakRSSBytes), float64(b.PeakRSSBytes))
		}
	}
	if err := writeCityFile(outPath, &rec); err != nil {
		fatal(err)
	}
	fmt.Printf("wdcbench: wrote %s (%d points)\n", outPath, len(current.Points))

	var failures []string
	// Parallel speedup gate: with enough cores, the ≥16-cell point at
	// P=NumCPU must reach 2.5× its own single-lane-worker (P=1) throughput.
	// Skipped on narrow machines, where the lanes have no cores to spread
	// over and the only honest measurement is the barrier overhead itself.
	if ncpu := runtime.NumCPU(); ncpu >= 4 {
		base := current.find(fmt.Sprintf("%dx%d@p1", cityParallelPoint[0], cityParallelPoint[1]))
		wide := current.find(fmt.Sprintf("%dx%d@p%d", cityParallelPoint[0], cityParallelPoint[1], ncpu))
		if base != nil && wide != nil && base.EventsPerSec > 0 {
			if speedup := wide.EventsPerSec / base.EventsPerSec; speedup < 2.5 {
				failures = append(failures, fmt.Sprintf(
					"parallel speedup %.2fx at P=%d (%.0f vs %.0f events/s) below the 2.5x gate",
					speedup, ncpu, wide.EventsPerSec, base.EventsPerSec))
			}
		}
	}
	for _, p := range current.Points {
		if maxRSSBytes > 0 && p.PeakRSSBytes > maxRSSBytes {
			failures = append(failures, fmt.Sprintf("point %s: peak RSS %.1f MiB exceeds absolute ceiling %.1f MiB",
				p.key(), float64(p.PeakRSSBytes)/(1<<20), float64(maxRSSBytes)/(1<<20)))
		}
	}
	if maxRegressPct > 0 && prior != nil {
		ref := prior.Current
		if ref == nil {
			ref = prior.Baseline
		}
		for _, p := range current.Points {
			committed := ref.find(p.key())
			if committed == nil {
				continue
			}
			if committed.EventsPerSec > 0 {
				floor := committed.EventsPerSec * (1 - maxRegressPct/100)
				if p.EventsPerSec < floor {
					failures = append(failures, fmt.Sprintf("point %s: events/s regression: %.0f < %.0f (committed %.0f)",
						p.key(), p.EventsPerSec, floor, committed.EventsPerSec))
				}
			}
			if committed.PeakRSSBytes > 0 {
				ceiling := float64(committed.PeakRSSBytes) * (1 + maxRegressPct/100)
				if float64(p.PeakRSSBytes) > ceiling {
					failures = append(failures, fmt.Sprintf("point %s: peak RSS regression: %.1f MiB > %.1f MiB (committed %.1f MiB)",
						p.key(), float64(p.PeakRSSBytes)/(1<<20), ceiling/(1<<20), float64(committed.PeakRSSBytes)/(1<<20)))
				}
			}
		}
	}
	if len(failures) > 0 {
		fatal(fmt.Errorf("city gate failed:\n  %s", strings.Join(failures, "\n  ")))
	}
}

func readCityFile(path string) *CityFile {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var f CityFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil
	}
	return &f
}

func writeCityFile(path string, f *CityFile) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
