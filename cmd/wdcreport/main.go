// Command wdcreport assembles the CSV files written by `wdcsweep -out` into
// a single markdown report: one section per experiment with an ASCII chart
// of its first metric and a table of every metric.
//
// Usage:
//
//	wdcsweep -exp all -out results
//	wdcreport -in results -out report.md
//
// With -diff it instead compares two run artifacts written by
// `wdcsweep -store` (paths to run.json files or their directories),
// rendering per-metric deltas with confidence intervals and a delay
// quantile shift table:
//
//	wdcsweep -exp F1 -store runA
//	wdcsweep -exp F1 -store runB
//	wdcreport -diff runA runB
//
// In diff mode the exit status is 0 when no delta clears the combined 95%
// confidence threshold and 1 when at least one does, so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/experiment"
	"repro/internal/resultstore"
)

func main() {
	in := flag.String("in", "results", "directory of wdcsweep CSV files")
	out := flag.String("out", "", "markdown output file (default stdout)")
	width := flag.Int("width", 64, "chart width")
	height := flag.Int("height", 16, "chart height")
	diff := flag.Bool("diff", false, "compare two run artifacts: wdcreport -diff runA runB")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two run paths, got %d", flag.NArg()))
		}
		runDiff(flag.Arg(0), flag.Arg(1), *out)
		return
	}

	files, err := filepath.Glob(filepath.Join(*in, "*.csv"))
	if err != nil {
		fatal(err)
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("no CSV files under %s", *in))
	}
	// Present in registry order, then anything unrecognized.
	order := map[string]int{}
	for i, id := range experiment.IDs() {
		order[id] = i
	}
	sort.Slice(files, func(i, j int) bool {
		a := strings.TrimSuffix(filepath.Base(files[i]), ".csv")
		b := strings.TrimSuffix(filepath.Base(files[j]), ".csv")
		ra, oka := order[a]
		rb, okb := order[b]
		switch {
		case oka && okb:
			return ra < rb
		case oka:
			return true
		case okb:
			return false
		default:
			return a < b
		}
	})

	var b strings.Builder
	fmt.Fprintf(&b, "# wdcsim experiment report\n\n")
	fmt.Fprintf(&b, "Generated from %d result files in `%s`.\n\n", len(files), *in)
	for _, f := range files {
		id := strings.TrimSuffix(filepath.Base(f), ".csv")
		data, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		section, err := experiment.ReportSection(id, string(data), *width, *height)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wdcreport: skipping %s: %v\n", f, err)
			continue
		}
		b.WriteString(section)
	}

	if *out == "" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
}

// runDiff loads two artifacts, renders their comparison, and exits 1 when
// any metric delta is significant (for CI gating).
func runDiff(pathA, pathB, outPath string) {
	runA, err := resultstore.Load(pathA)
	if err != nil {
		fatal(err)
	}
	runB, err := resultstore.Load(pathB)
	if err != nil {
		fatal(err)
	}
	d := resultstore.Compare(runA, runB)
	report := d.Markdown()
	if outPath == "" {
		fmt.Print(report)
	} else if err := os.WriteFile(outPath, []byte(report), 0o644); err != nil {
		fatal(err)
	} else {
		fmt.Fprintln(os.Stderr, "wrote", outPath)
	}
	if n := d.Significant(); n > 0 {
		fmt.Fprintf(os.Stderr, "wdcreport: %d significant delta(s)\n", n)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdcreport:", err)
	os.Exit(1)
}
