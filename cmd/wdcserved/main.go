// Command wdcserved serves the invalidation-report engine over the wire:
// the same capability backends the simulation core runs, bound to real
// sockets instead of the DES.
//
//   - UDP broadcast plane: every invalidation report the algorithm schedules
//     leaves as one datagram (u8 mcs | ir wire form) to -udp-target.
//   - TCP uplink query plane: length-prefixed frames carrying item queries
//     and UIR-style catch-up requests (see internal/serve wire docs).
//   - HTTP control plane: /v1/status, /v1/capabilities, /v1/algo (live
//     swap), /v1/update (db-update injection), /v1/signals, /v1/advance
//     (virtual clock), /metrics (Prometheus), /debug/pprof.
//
// Usage:
//
//	wdcserved -algo hybrid -tcp 127.0.0.1:0 -http 127.0.0.1:0 \
//	          -udp-target 127.0.0.1:9999 -clock wall
//
// On startup the bound addresses are printed as one JSON line on stdout, so
// harnesses spawning the daemon on ephemeral ports can find the planes. With
// -clock virtual the engine clock moves only through /v1/advance — the mode
// the DES conformance oracle drives in lock-step. SIGINT/SIGTERM shut down
// gracefully: in-flight TCP queries drain and a final catch-up report covers
// everything since the last broadcast.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/des"
	"repro/internal/ir"
	"repro/internal/serve"
	"repro/internal/serve/rest"
)

func main() {
	cfg := serve.DefaultRuntimeConfig()

	algo := flag.String("algo", cfg.Algo, "invalidation algorithm: "+strings.Join(ir.Names, ", "))
	seed := flag.Uint64("seed", cfg.Seed, "master RNG seed (db update stream)")
	items := flag.Int("items", cfg.DB.NumItems, "database items")
	itemBits := flag.Int("item-bits", cfg.DB.ItemBits, "payload bits per item")
	updateRate := flag.Float64("update-rate", cfg.DB.UpdateRate, "self-driving updates/s (0 = ingest-only)")
	interval := flag.Float64("interval", cfg.IR.Interval.Seconds(), "report interval L (s)")
	window := flag.Int("window", cfg.IR.WindowReports, "coverage window K (report periods)")
	coverage := flag.Float64("coverage", cfg.IR.Coverage, "LAIR fast-report coverage target")
	clock := flag.String("clock", "wall", "engine clock: wall (real time) or virtual (/v1/advance)")
	udpTarget := flag.String("udp-target", "", "address receiving broadcast datagrams (empty disables)")
	tcpAddr := flag.String("tcp", "127.0.0.1:0", "query-plane listen address (empty disables)")
	httpAddr := flag.String("http", "127.0.0.1:0", "control-plane listen address (empty disables)")
	ioTimeout := flag.Duration("io-timeout", serve.DefaultIOTimeout, "per-operation deadline on query connections")
	confJSON := flag.String("conf-json", "", "full serve.RuntimeConfig as JSON (overrides other config flags)")
	flag.Parse()

	cfg.Algo = *algo
	cfg.Seed = *seed
	cfg.DB.NumItems = *items
	cfg.DB.ItemBits = *itemBits
	cfg.DB.UpdateRate = *updateRate
	cfg.IR.Interval = des.FromSeconds(*interval)
	cfg.IR.WindowReports = *window
	cfg.IR.Coverage = *coverage
	cfg.IR.NumItems = cfg.DB.NumItems
	if *confJSON != "" {
		if err := json.Unmarshal([]byte(*confJSON), &cfg); err != nil {
			fatal(fmt.Errorf("-conf-json: %w", err))
		}
	}
	if *clock != "wall" && *clock != "virtual" {
		fatal(fmt.Errorf("-clock must be wall or virtual, got %q", *clock))
	}

	srv, err := serve.NewServer(serve.Options{
		Runtime:   cfg,
		WallClock: *clock == "wall",
		UDPTarget: *udpTarget,
		TCPAddr:   *tcpAddr,
		IOTimeout: *ioTimeout,
	})
	if err != nil {
		fatal(err)
	}

	var httpLn net.Listener
	if *httpAddr != "" {
		httpLn, err = net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		go func() { _ = http.Serve(httpLn, rest.Handler(srv)) }()
	}

	addrs := struct {
		Algo      string `json:"algo"`
		Clock     string `json:"clock"`
		TCP       string `json:"tcp,omitempty"`
		HTTP      string `json:"http,omitempty"`
		UDPTarget string `json:"udp_target,omitempty"`
	}{Algo: cfg.Algo, Clock: *clock, UDPTarget: *udpTarget}
	if a := srv.TCPAddr(); a != nil {
		addrs.TCP = a.String()
	}
	if httpLn != nil {
		addrs.HTTP = httpLn.Addr().String()
	}
	_ = json.NewEncoder(os.Stdout).Encode(addrs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	if httpLn != nil {
		_ = httpLn.Close()
	}
	srv.Shutdown()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdcserved:", err)
	os.Exit(1)
}
