// Command wdcsim runs one wireless data-caching simulation and prints its
// statistics.
//
// Usage:
//
//	wdcsim -algo hybrid -clients 100 -update-rate 0.5 -load 0.4 -horizon 3600
//
// Every knob of the model is exposed as a flag; defaults reproduce the
// evaluation's base configuration. Add -v for the full metric breakdown and
// -reps N to average over independent replications. -trace out.jsonl writes
// the run's full event trace (reports, queries, cache ops, frames, sleep
// transitions, database updates) as one JSON object per line.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	cfg := core.DefaultConfig()

	algo := flag.String("algo", cfg.Algorithm, "invalidation algorithm: "+strings.Join(ir.Names, ", "))
	seed := flag.Uint64("seed", cfg.Seed, "master RNG seed")
	reps := flag.Int("reps", 1, "independent replications to average")
	workers := flag.Int("workers", 0, "parallel replications (0 = all cores)")
	clients := flag.Int("clients", cfg.NumClients, "number of mobile clients")
	items := flag.Int("items", cfg.DB.NumItems, "database items")
	capacity := flag.Int("cache", cfg.CacheCapacity, "client cache capacity (items)")
	policy := flag.String("policy", cfg.CachePolicy.String(), "replacement policy: lru, fifo, random")
	updateRate := flag.Float64("update-rate", cfg.DB.UpdateRate, "aggregate updates/s")
	queryRate := flag.Float64("query-rate", cfg.Workload.QueryRate, "per-client queries/s")
	zipf := flag.Float64("zipf", cfg.Workload.Zipf, "access skew theta")
	sleep := flag.Float64("sleep", cfg.Workload.SleepRatio, "client disconnection ratio [0,1)")
	load := flag.Float64("load", cfg.TrafficLoad, "background downlink load fraction")
	trafficModel := flag.String("traffic", cfg.Traffic.Model.String(), "background model: poisson, cbr, pareto-onoff")
	snr := flag.Float64("snr", cfg.Channel.MeanSNRdB, "population mean SNR (dB)")
	doppler := flag.Float64("doppler", cfg.Channel.DopplerHz, "fading Doppler (Hz)")
	interval := flag.Float64("interval", cfg.IR.Interval.Seconds(), "report interval L (s)")
	coverage := flag.Float64("coverage", cfg.IR.Coverage, "LAIR fast-report coverage target")
	horizon := flag.Float64("horizon", cfg.Horizon.Seconds(), "simulated span (s)")
	warmup := flag.Float64("warmup", cfg.Warmup.Seconds(), "warmup excluded from stats (s)")
	cells := flag.Int("cells", cfg.Topology.NumCells, "base-station cells (>1 shards the run into a multi-cell grid)")
	handoffPolicy := flag.String("handoff-policy", cfg.Topology.Policy.String(), "cache treatment at handoff: drop, revalidate")
	handoffSpeed := flag.Float64("handoff-speed", cfg.Topology.SpeedMaxMps, "top client speed over the grid (m/s); min is a third of it")
	outage := flag.Float64("outage", cfg.Fault.OutageLen.Seconds(), "base-station outage length (s); 0 disables")
	outagePeriod := flag.Float64("outage-period", 180, "outage repeat period (s); 0 = one-shot")
	outageStart := flag.Float64("outage-start", 30, "first outage start (s)")
	reportLoss := flag.Float64("report-loss", cfg.Fault.ReportLossProb, "probability a standalone report vanishes in transit")
	reportTrunc := flag.Float64("report-trunc", cfg.Fault.ReportTruncProb, "probability a standalone report arrives truncated")
	queryTimeout := flag.Float64("query-timeout", cfg.Fault.QueryTimeout.Seconds(), "uplink query retry timeout (s); 0 disables retries")
	retryMax := flag.Int("retry-max", cfg.Fault.RetryMax, "retry attempts before a query gives up")
	disconnect := flag.Float64("disconnect", 0, "mean seconds between client disconnections; 0 disables")
	disconnectMean := flag.Float64("disconnect-mean", 30, "mean disconnection length (s)")
	recovery := flag.String("recovery", cfg.Fault.Recovery.String(), "reconnection policy: window, flush, catchup")
	strict := flag.Bool("strict-priority", false, "responses strictly preempt background traffic")
	snoop := flag.Bool("snoop", false, "clients cache overheard responses")
	coalesce := flag.Bool("coalesce", false, "server coalesces same-item responses")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file (single replication only)")
	configPath := flag.String("config", "", "JSON config file to overlay before flags")
	saveConfig := flag.String("save-config", "", "write the effective config as JSON and exit")
	verbose := flag.Bool("v", false, "print the full metric breakdown")
	asJSON := flag.Bool("json", false, "print results as JSON")
	flag.Parse()

	// Precedence: defaults < -config file < explicitly set flags.
	if *configPath != "" {
		if err := cfg.LoadJSON(*configPath); err != nil {
			fatal(err)
		}
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	// With no config file every flag applies (it carries the default);
	// with one, only flags the user actually passed override the file.
	use := func(name string) bool { return *configPath == "" || set[name] }

	if use("algo") {
		cfg.Algorithm = *algo
	}
	if use("seed") {
		cfg.Seed = *seed
	}
	if use("clients") {
		cfg.NumClients = *clients
	}
	if use("items") {
		cfg.DB.NumItems = *items
	}
	if use("cache") {
		cfg.CacheCapacity = *capacity
	}
	if use("policy") {
		p, err := cache.ParsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		cfg.CachePolicy = p
	}
	if use("update-rate") {
		cfg.DB.UpdateRate = *updateRate
	}
	if use("query-rate") {
		cfg.Workload.QueryRate = *queryRate
	}
	if use("zipf") {
		cfg.Workload.Zipf = *zipf
	}
	if use("sleep") {
		cfg.Workload.SleepRatio = *sleep
	}
	if use("load") {
		cfg.TrafficLoad = *load
	}
	if use("snr") {
		cfg.Channel.MeanSNRdB = *snr
	}
	if use("doppler") {
		cfg.Channel.DopplerHz = *doppler
	}
	if use("interval") {
		cfg.IR.Interval = des.FromSeconds(*interval)
	}
	if use("coverage") {
		cfg.IR.Coverage = *coverage
	}
	if use("horizon") {
		cfg.Horizon = des.FromSeconds(*horizon)
	}
	if use("warmup") {
		cfg.Warmup = des.FromSeconds(*warmup)
	}
	if use("strict-priority") {
		cfg.Downlink.StrictPriority = *strict
	}
	if use("snoop") {
		cfg.SnoopResponses = *snoop
	}
	if use("coalesce") {
		cfg.CoalesceResponses = *coalesce
	}
	if use("traffic") {
		model, err := traffic.ParseModel(*trafficModel)
		if err != nil {
			fatal(err)
		}
		cfg.Traffic.Model = model
	}
	if use("cells") {
		cfg.Topology.NumCells = *cells
	}
	if use("handoff-policy") {
		p, err := topology.ParsePolicy(*handoffPolicy)
		if err != nil {
			fatal(err)
		}
		cfg.Topology.Policy = p
	}
	if use("handoff-speed") {
		cfg.Topology.SpeedMaxMps = *handoffSpeed
		cfg.Topology.SpeedMinMps = *handoffSpeed / 3
	}
	if use("outage") {
		cfg.Fault.OutageLen = des.FromSeconds(*outage)
	}
	if use("outage-period") {
		cfg.Fault.OutagePeriod = des.FromSeconds(*outagePeriod)
	}
	if use("outage-start") {
		cfg.Fault.OutageStart = des.FromSeconds(*outageStart)
	}
	if use("report-loss") {
		cfg.Fault.ReportLossProb = *reportLoss
	}
	if use("report-trunc") {
		cfg.Fault.ReportTruncProb = *reportTrunc
	}
	if use("query-timeout") {
		cfg.Fault.QueryTimeout = des.FromSeconds(*queryTimeout)
	}
	if use("retry-max") {
		cfg.Fault.RetryMax = *retryMax
	}
	if use("disconnect") {
		if *disconnect > 0 {
			cfg.Fault.DisconnectRate = 1 / *disconnect
		} else {
			cfg.Fault.DisconnectRate = 0
		}
	}
	if use("disconnect-mean") {
		cfg.Fault.DisconnectMeanSec = *disconnectMean
	}
	if use("recovery") {
		p, err := fault.ParseRecovery(*recovery)
		if err != nil {
			fatal(err)
		}
		cfg.Fault.Recovery = p
	}
	// Outages without a retry layer would strand every query the dark base
	// station swallowed; arm a sane timeout unless the user chose one.
	if cfg.Fault.OutagesEnabled() && cfg.Fault.QueryTimeout <= 0 {
		cfg.Fault.QueryTimeout = des.FromSeconds(3)
	}

	if *saveConfig != "" {
		if err := cfg.SaveJSON(*saveConfig); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *saveConfig)
		return
	}

	if *tracePath != "" && *reps > 1 {
		fatal(fmt.Errorf("-trace records a single replication; drop -reps %d", *reps))
	}

	if *reps <= 1 {
		var sink *obs.JSONL
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			sink = obs.NewJSONL(f)
			cfg.Tracer = sink
		}
		r, err := core.Run(cfg)
		if err != nil {
			fatal(err)
		}
		if sink != nil {
			if err := sink.Close(); err != nil {
				fatal(fmt.Errorf("trace %s: %w", *tracePath, err))
			}
			fmt.Fprintf(os.Stderr, "wdcsim: %d events traced to %s\n", sink.Events(), *tracePath)
		}
		if *asJSON {
			data, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(data))
			return
		}
		fmt.Println(r)
		if *verbose {
			printVerbose(r)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	agg, err := core.RunReplicationsCtx(ctx, cfg, *reps, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Println(agg)
	if *verbose {
		for _, r := range agg.Runs {
			fmt.Println(r)
		}
	}
}

func printVerbose(r *core.RunStats) {
	fmt.Printf("  measured span       %.0f s\n", r.MeasuredSec)
	fmt.Printf("  queries / answered  %d / %d (pending at end: %d)\n", r.Queries, r.Answered, r.PendingAtEnd)
	fmt.Printf("  hits / miss-answers %d / %d (hit ratio %.4f)\n", r.CacheHits, r.MissAnswers, r.HitRatio)
	fmt.Printf("  delay mean/p95/max  %.3f / %.3f / %.3f s\n", r.MeanDelay, r.P95Delay, r.MaxDelay)
	fmt.Printf("  answered via        full=%d mini=%d piggyback=%d\n",
		r.AnsweredVia[0], r.AnsweredVia[1], r.AnsweredVia[2])
	fmt.Printf("  reports decoded/lost %d / %d (loss %.4f)\n", r.ReportsDecoded, r.ReportsLost, r.ReportLossRate())
	fmt.Printf("  cache drops          window=%d sig-capacity=%d false-inval=%d\n",
		r.CacheDrops, r.SigDrops, r.FalseInval)
	fmt.Printf("  uplink sent/attempts/collisions %d / %d / %d\n",
		r.UplinkSent, r.UplinkAttempts, r.UplinkCollisions)
	fmt.Printf("  airtime ir/resp/bg   %.1f / %.1f / %.1f s (util %.3f)\n",
		r.AirtimeIR, r.AirtimeResponse, r.AirtimeBackground, r.DownlinkUtil)
	fmt.Printf("  invalidation bits    reports=%d piggyback=%d (%.0f b/s)\n",
		r.IRBits, r.PiggyBits, r.OverheadBitsPerSec())
	fmt.Printf("  response retries/drops %d / %d\n", r.ResponseRetries, r.ResponseDrops)
	fmt.Printf("  energy               %.1f J total, %.2f J/query\n", r.EnergyJoules, r.EnergyPerQuery)
	fmt.Printf("  db updates           %d\n", r.Updates)
	fmt.Printf("  stale violations     %d\n", r.StaleViolations)
	if r.NumCells > 1 {
		fmt.Printf("  cells / handoffs     %d / %d (caches flushed %d)\n",
			r.NumCells, r.Handoffs, r.HandoffFlushes)
	}
	if r.Outages+r.ReportsSuppressed+r.ReportsFaultLost+r.ReportsFaultTrunc+
		r.QueriesLostToOutage+r.QueryRetries+r.QueryGiveups+r.Disconnects > 0 {
		fmt.Printf("  outages              %d (queries lost %d, reports suppressed %d)\n",
			r.Outages, r.QueriesLostToOutage, r.ReportsSuppressed)
		fmt.Printf("  report faults        lost=%d truncated=%d\n",
			r.ReportsFaultLost, r.ReportsFaultTrunc)
		fmt.Printf("  query retries        %d (%.3f/query, giveups %d)\n",
			r.QueryRetries, r.RetriesPerQuery(), r.QueryGiveups)
		fmt.Printf("  disconnects          %d (recoveries %d, mean %.3f s)\n",
			r.Disconnects, r.Recoveries, r.RecoveryMeanSec)
	}
	fmt.Printf("  %s\n", r.PerfString())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdcsim:", err)
	os.Exit(1)
}
