// Command wdctrace runs a short simulation and prints the invalidation
// report timeline: when each report went out, its kind, rate, window and
// contents. It also exercises the wire codec round-trip on every report, so
// it doubles as an end-to-end encoding check.
//
// Usage:
//
//	wdctrace -algo hybrid -span 120 -load 0.3
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/ir"
)

func main() {
	algo := flag.String("algo", "hybrid", "invalidation algorithm: "+strings.Join(ir.Names, ", "))
	span := flag.Float64("span", 120, "simulated seconds to trace")
	load := flag.Float64("load", 0.3, "background downlink load")
	seed := flag.Uint64("seed", 1, "master RNG seed")
	updateRate := flag.Float64("update-rate", 0.5, "aggregate updates/s")
	maxItems := flag.Int("max-items", 8, "item ids to print per report")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Algorithm = *algo
	cfg.Seed = *seed
	cfg.TrafficLoad = *load
	cfg.DB.UpdateRate = *updateRate
	cfg.Horizon = des.FromSeconds(*span)
	cfg.Warmup = 0
	cfg.NumClients = 20

	n := 0
	codecFailures := 0
	cfg.OnReportBroadcast = func(r *ir.Report, mcs int, at des.Time) {
		n++
		// Round-trip through the wire codec as a live check.
		decoded, err := ir.Unmarshal(r.Marshal())
		if err != nil || !reflect.DeepEqual(decoded, r) {
			codecFailures++
		}
		window := "since-epoch"
		if r.WindowStart > 0 {
			window = fmt.Sprintf("%.1fs", at.Sub(r.WindowStart).Seconds())
		}
		var detail string
		if r.Sig != nil {
			detail = fmt.Sprintf("sig{bits=%d cap=%d fp=%g}", r.Sig.Bits, r.Sig.Capacity, r.Sig.FalsePositive)
		} else {
			ids := make([]string, 0, *maxItems)
			for i, u := range r.Items {
				if i == *maxItems {
					ids = append(ids, "…")
					break
				}
				ids = append(ids, fmt.Sprintf("%d", u.ID))
			}
			detail = fmt.Sprintf("items=%d [%s]", len(r.Items), strings.Join(ids, " "))
		}
		fmt.Printf("%9.3fs  seq=%-4d %-9s mcs=%d window=%-12s size=%5db  %s\n",
			at.Seconds(), r.Seq, r.Kind, mcs, window, r.SizeBits()/8, detail)
	}

	r, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdctrace:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d reports in %.0fs; codec round-trip failures: %d\n",
		n, *span, codecFailures)
	fmt.Println(r)
	if codecFailures > 0 {
		os.Exit(1)
	}
}
