// Command wdctrace runs a short simulation and prints the invalidation
// report timeline: when each report went out, its kind, carrier, rate,
// window and contents. It is a thin consumer of the obs.Tracer event layer —
// the same events `wdcsim -trace` writes as JSONL.
//
// Usage:
//
//	wdctrace -algo hybrid -span 120 -load 0.3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/ir"
	"repro/internal/obs"
)

// reportPrinter is a Tracer interested only in report broadcasts.
type reportPrinter struct {
	obs.Base
	maxItems int
	all      bool // include piggybacked digests, not just standalone reports
	n        int
}

func (p *reportPrinter) ReportBroadcast(e obs.ReportBroadcastEvent) {
	if !p.all && e.Carrier != obs.CarrierIR {
		return
	}
	p.n++
	window := "since-epoch"
	if e.WindowStart > 0 {
		window = fmt.Sprintf("%.1fs", e.At.Sub(e.WindowStart).Seconds())
	}
	var detail string
	if e.Sig {
		detail = "sig"
	} else {
		ids := make([]string, 0, p.maxItems)
		for i, id := range e.Items {
			if i == p.maxItems {
				ids = append(ids, "…")
				break
			}
			ids = append(ids, fmt.Sprintf("%d", id))
		}
		detail = fmt.Sprintf("items=%d [%s]", len(e.Items), strings.Join(ids, " "))
	}
	fmt.Printf("%9.3fs  seq=%-4d %-9s via=%-10s mcs=%d window=%-12s size=%5db  %s\n",
		e.At.Seconds(), e.Seq, e.Kind, e.Carrier, e.MCS, window, e.SizeBits/8, detail)
}

func main() {
	algo := flag.String("algo", "hybrid", "invalidation algorithm: "+strings.Join(ir.Names, ", "))
	span := flag.Float64("span", 120, "simulated seconds to trace")
	load := flag.Float64("load", 0.3, "background downlink load")
	seed := flag.Uint64("seed", 1, "master RNG seed")
	updateRate := flag.Float64("update-rate", 0.5, "aggregate updates/s")
	maxItems := flag.Int("max-items", 8, "item ids to print per report")
	all := flag.Bool("all", false, "also print piggybacked digests riding data frames")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Algorithm = *algo
	cfg.Seed = *seed
	cfg.TrafficLoad = *load
	cfg.DB.UpdateRate = *updateRate
	cfg.Horizon = des.FromSeconds(*span)
	cfg.Warmup = 0
	cfg.NumClients = 20

	printer := &reportPrinter{maxItems: *maxItems, all: *all}
	cfg.Tracer = printer

	r, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdctrace:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d reports in %.0fs\n", printer.n, *span)
	fmt.Println(r)
}
