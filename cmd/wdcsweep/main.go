// Command wdcsweep regenerates the evaluation's figures and tables.
//
// Usage:
//
//	wdcsweep -list                 # show the experiment registry
//	wdcsweep -exp F4               # run one experiment, print its table
//	wdcsweep -exp all -out results # run everything, write CSVs as well
//	wdcsweep -exp F1 -quick        # 2 reps at a quarter horizon (smoke)
//	wdcsweep -exp all -out results -resume   # continue an interrupted run
//	wdcsweep -exp F1 -store runA   # also write a versioned run artifact
//
// Tables print to stdout; -out writes one CSV per experiment into the given
// directory plus a checkpoint.jsonl with one JSON record per completed
// cell. Interrupting a run (SIGINT/SIGTERM) keeps the checkpoint, and
// -resume skips the cells it records instead of rerunning them. All
// requested experiments are scheduled through one global worker pool of
// (cell × replication) units, so even a single small figure uses every
// core.
//
// -store writes the completed sweep as a strict-JSON run artifact
// (internal/resultstore: config hash, build metadata, per-point metric
// summaries and merged delay sketches) that `wdcreport -diff` compares.
//
// Observability: -debug-addr :6060 serves net/http/pprof plus a live JSON
// progress snapshot at /debug/sweep (units and cells done, events/sec,
// worker utilization, ETA, per-algorithm breakdown, windowed per-cell
// rollups) and a Prometheus text exposition of the same counters at
// /metrics. A perf table per experiment goes to stderr after the run.
// -quiet (or -q) silences all progress; the \r progress line is also
// auto-suppressed when stderr is not a terminal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/des"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/resultstore"
)

func main() {
	expID := flag.String("exp", "", "experiment id (F1..F10, T1..T4, A1..A6, M1..M3) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	reps := flag.Int("reps", 5, "replications per cell")
	workers := flag.Int("workers", 0, "global (cell × replication) worker pool size (≤0 = all cores)")
	seed := flag.Uint64("seed", 1, "base seed")
	algos := flag.String("algos", "", "comma-separated algorithm filter (default: experiment's own set)")
	outDir := flag.String("out", "", "directory for CSV output and the cell checkpoint (optional)")
	resume := flag.Bool("resume", false, "skip cells already recorded in <out>/checkpoint.jsonl (requires -out)")
	quick := flag.Bool("quick", false, "quarter horizon, 2 reps: smoke-test mode")
	horizon := flag.Float64("horizon", 0, "override simulated span in seconds (0 = default)")
	quietShort := flag.Bool("q", false, "suppress progress and status lines")
	quietLong := flag.Bool("quiet", false, "alias for -q")
	debugAddr := flag.String("debug-addr", "", "serve pprof and a live sweep snapshot on this address (e.g. :6060)")
	storeDir := flag.String("store", "", "write a versioned run artifact (run.json) into this directory; compare two with wdcreport -diff")
	flag.Parse()

	quiet := *quietShort || *quietLong
	// The \r-rewritten progress line only makes sense on a terminal; when
	// stderr is piped into a log it degrades to noise, so suppress it there
	// even without -q. Plain newline-terminated status lines stay.
	progressOK := !quiet && stderrIsTerminal()

	if *list {
		for _, e := range experiment.Registry() {
			algos := "all"
			if len(e.Algorithms) > 0 {
				algos = strings.Join(e.Algorithms, ",")
			}
			metrics := make([]string, len(e.Metrics))
			for i, m := range e.Metrics {
				metrics[i] = m.Name
			}
			fmt.Printf("%-4s %-55s x=%s pts=%d algos=%s metrics=%s\n",
				e.ID, e.Title, e.XLabel, len(e.Points), algos, strings.Join(metrics, ","))
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "wdcsweep: -exp required (or -list); e.g. -exp F1")
		os.Exit(2)
	}
	if *resume && *outDir == "" {
		fmt.Fprintln(os.Stderr, "wdcsweep: -resume requires -out (the checkpoint lives there)")
		os.Exit(2)
	}

	var exps []*experiment.Experiment
	if *expID == "all" {
		exps = experiment.Registry()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e := experiment.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "wdcsweep: unknown experiment %q (have %v)\n",
					id, experiment.IDs())
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	base := experiment.DefaultBase()
	base.Seed = *seed
	if *horizon > 0 {
		base.Horizon = des.FromSeconds(*horizon)
		if base.Warmup >= base.Horizon {
			base.Warmup = base.Horizon / 4
		}
	}
	r := *reps
	if *quick {
		base.Horizon /= 4
		base.Warmup = 2 * des.Minute
		if r > 2 {
			r = 2
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	if *algos != "" {
		// Filter copies: the registry hands out shared *Experiment values,
		// and mutating them would leak the filter into later lookups.
		filter := strings.Split(*algos, ",")
		for i, e := range exps {
			dup := *e
			dup.Algorithms = filter
			exps[i] = &dup
		}
	}

	var ckpt *experiment.Checkpoint
	if *outDir != "" {
		var err error
		ckpt, err = experiment.OpenCheckpoint(filepath.Join(*outDir, experiment.CheckpointName), *resume)
		if err != nil {
			fatal(err)
		}
		defer ckpt.Close()
		if *resume && !quiet {
			fmt.Fprintf(os.Stderr, "wdcsweep: resuming from %s (%d cells recorded)\n",
				ckpt.Path(), ckpt.Len())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := experiment.Options{Base: base, Reps: r, Workers: *workers, Checkpoint: ckpt}
	if *debugAddr != "" {
		opt.Monitor = &obs.SweepMonitor{}
		serveDebug(*debugAddr, opt.Monitor, quiet)
	}
	if progressOK {
		opt.Progress = func(p experiment.Progress) {
			line := fmt.Sprintf("%d/%d reps  %d/%d cells", p.DoneUnits, p.TotalUnits, p.DoneCells, p.TotalCells)
			if p.ETA > 0 {
				line += fmt.Sprintf("  eta %s", p.ETA.Round(time.Second))
			}
			if p.Cell != "" {
				line += "  " + p.Cell
			}
			fmt.Fprintf(os.Stderr, "\r%-78s", line)
		}
	}
	start := time.Now()
	results, err := experiment.RunAll(ctx, exps, opt)
	if progressOK {
		fmt.Fprintf(os.Stderr, "\r%-78s\r", "")
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if ckpt != nil {
				fmt.Fprintf(os.Stderr, "wdcsweep: interrupted; finished cells are in %s — rerun with -resume to continue\n",
					ckpt.Path())
			} else {
				fmt.Fprintln(os.Stderr, "wdcsweep: interrupted")
			}
			os.Exit(130)
		}
		fatal(err)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "%d experiment(s) done in %.1fs\n", len(results), time.Since(start).Seconds())
	}

	for _, res := range results {
		fmt.Println(res.Table())
		if !quiet {
			// Perf is wall-clock telemetry, deliberately kept off stdout so
			// tables stay byte-comparable between runs and worker counts.
			fmt.Fprintln(os.Stderr, res.PerfTable())
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, res.Exp.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fatal(err)
			}
			if !quiet {
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}

	if *storeDir != "" {
		run, err := resultstore.New(results, base, r, time.Now().Unix(), gitCommit())
		if err != nil {
			fatal(err)
		}
		path, err := resultstore.Save(*storeDir, run)
		if err != nil {
			fatal(err)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote %s (config %s)\n", path, run.ConfigHash[:12])
		}
	}
}

// gitCommit best-effort resolves the working tree's HEAD for artifact
// provenance; empty when the binary runs outside a checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// stderrIsTerminal reports whether stderr is attached to a character device
// (as opposed to a pipe or file).
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// serveDebug starts the introspection server: the standard pprof handlers
// plus /debug/sweep, a JSON snapshot of live sweep progress fed by the
// worker pool's atomic counters.
func serveDebug(addr string, mon *obs.SweepMonitor, quiet bool) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/sweep", mon)
	mux.Handle("/metrics", mon.MetricsHandler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(fmt.Errorf("debug server: %w", err))
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "wdcsweep: debug server at http://%s/debug/sweep (Prometheus at /metrics, pprof under /debug/pprof/)\n",
			ln.Addr())
	}
	go func() { _ = http.Serve(ln, mux) }()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdcsweep:", err)
	os.Exit(1)
}
