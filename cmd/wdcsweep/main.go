// Command wdcsweep regenerates the evaluation's figures and tables.
//
// Usage:
//
//	wdcsweep -list                 # show the experiment registry
//	wdcsweep -exp F4               # run one experiment, print its table
//	wdcsweep -exp all -out results # run everything, write CSVs as well
//	wdcsweep -exp F1 -quick        # 2 reps at a quarter horizon (smoke)
//
// Tables print to stdout; -out writes one CSV per experiment into the given
// directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/des"
	"repro/internal/experiment"
)

func main() {
	expID := flag.String("exp", "", "experiment id (F1..F10, T1..T4, A1..A6) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	reps := flag.Int("reps", 5, "replications per cell")
	workers := flag.Int("workers", 0, "parallel cells (0 = default)")
	seed := flag.Uint64("seed", 1, "base seed")
	algos := flag.String("algos", "", "comma-separated algorithm filter (default: experiment's own set)")
	outDir := flag.String("out", "", "directory for CSV output (optional)")
	quick := flag.Bool("quick", false, "quarter horizon, 2 reps: smoke-test mode")
	horizon := flag.Float64("horizon", 0, "override simulated span in seconds (0 = default)")
	quiet := flag.Bool("q", false, "suppress progress lines")
	flag.Parse()

	if *list {
		for _, e := range experiment.Registry() {
			algos := "all"
			if len(e.Algorithms) > 0 {
				algos = strings.Join(e.Algorithms, ",")
			}
			fmt.Printf("%-4s %-55s x=%s algos=%s\n", e.ID, e.Title, e.XLabel, algos)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "wdcsweep: -exp required (or -list); e.g. -exp F1")
		os.Exit(2)
	}

	var exps []*experiment.Experiment
	if *expID == "all" {
		exps = experiment.Registry()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e := experiment.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "wdcsweep: unknown experiment %q (have %v)\n",
					id, experiment.IDs())
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	base := experiment.DefaultBase()
	base.Seed = *seed
	if *horizon > 0 {
		base.Horizon = des.FromSeconds(*horizon)
		if base.Warmup >= base.Horizon {
			base.Warmup = base.Horizon / 4
		}
	}
	r := *reps
	if *quick {
		base.Horizon /= 4
		base.Warmup = 2 * des.Minute
		if r > 2 {
			r = 2
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	if *algos != "" {
		filter := strings.Split(*algos, ",")
		for _, e := range exps {
			e.Algorithms = filter
		}
	}

	for _, e := range exps {
		start := time.Now()
		opt := experiment.Options{Base: base, Reps: r, Workers: *workers}
		if !*quiet {
			opt.Progress = func(done, total int, cell string) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells   ", e.ID, done, total)
			}
		}
		res, err := e.Run(opt)
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r%s done in %.1fs          \n", e.ID, time.Since(start).Seconds())
		}
		fmt.Println(res.Table())
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdcsweep:", err)
	os.Exit(1)
}
